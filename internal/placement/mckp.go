package placement

import "sort"

// TieredItem is one multiple-choice knapsack candidate: a chunk that must
// be assigned to exactly one tier of an N-tier hierarchy, with an Eq. 5
// style weight per tier (the predicted gain of residing there, net of
// movement cost). WeightNS[t] is the weight of assigning the chunk to
// tier t; all items must carry the same number of tiers.
type TieredItem struct {
	Chunk    string
	Size     int64
	WeightNS []float64
}

// TieredPlan is the outcome of SolveTiered.
type TieredPlan struct {
	// Assign maps chunk name -> chosen tier index.
	Assign map[string]int
	// TotalWeightNS is the summed weight of the assignment.
	TotalWeightNS float64
	// Solver records which strategy produced the plan: "argmax" (no
	// constrained tier), "dp" (exact dynamic program) or "greedy" (the
	// density fallback for large instances).
	Solver string
	// Work counts the solver's table cells (DP states x items, or the
	// greedy/argmax candidate scans) so callers can charge the decision's
	// critical-path cost proportionally to what actually ran.
	Work int
}

// mckpGranularity is the size quantum of the DP tables, shared with the 0-1
// knapsack (capacities are hundreds of MiB; every target object is larger).
const mckpGranularity = knapGranularity

// mckpMaxStates bounds the DP state space (capacity-granule cells per
// item) and mckpMaxCells the total table work (states x items — the 2D
// solver keeps one choice row per item, so memory scales with both);
// beyond either bound SolveTiered falls back to the greedy density
// heuristic.
const (
	mckpMaxStates = 1 << 21
	mckpMaxCells  = 1 << 27
)

// SolveTiered solves the multiple-choice knapsack of N-tier placement:
// every item is assigned exactly one tier, maximizing total weight subject
// to per-tier capacity constraints. capacities[t] < 0 marks tier t
// unconstrained (the slowest tier of a hierarchy, like the paper's NVM,
// must always be unconstrained so a feasible assignment exists).
//
// Instances with at most two constrained tiers and a bounded state space
// are solved exactly by dynamic programming over capacity granules; larger
// instances use a greedy-by-density fallback that never exceeds any
// capacity. Results are deterministic: ties break on item order.
func SolveTiered(items []TieredItem, capacities []int64) *TieredPlan {
	plan := &TieredPlan{Assign: make(map[string]int, len(items))}
	if len(items) == 0 {
		plan.Solver = "argmax"
		return plan
	}
	nTiers := len(capacities)

	// bestFree[i] is item i's best unconstrained tier (fallback residence).
	bestFree := make([]int, len(items))
	var constrained []int
	for t, cap := range capacities {
		if cap >= 0 {
			constrained = append(constrained, t)
		}
	}
	freeTier := func(it TieredItem) int {
		best, bestW := -1, 0.0
		for t := 0; t < nTiers && t < len(it.WeightNS); t++ {
			if capacities[t] >= 0 {
				continue
			}
			if best == -1 || it.WeightNS[t] > bestW {
				best, bestW = t, it.WeightNS[t]
			}
		}
		return best
	}
	for i, it := range items {
		bestFree[i] = freeTier(it)
		if bestFree[i] < 0 {
			panic("placement: SolveTiered needs at least one unconstrained tier (capacity < 0)")
		}
	}

	granules := func(size int64) int {
		return int((size + mckpGranularity - 1) / mckpGranularity)
	}
	capGran := make([]int, nTiers)
	for t, c := range capacities {
		if c >= 0 {
			capGran[t] = int(c / mckpGranularity)
		}
	}

	switch {
	case len(constrained) == 0:
		// Pure argmax: no capacity interaction at all.
		for i, it := range items {
			plan.Assign[it.Chunk] = bestFree[i]
			plan.TotalWeightNS += it.WeightNS[bestFree[i]]
		}
		plan.Solver = "argmax"
		plan.Work = len(items)
		return plan
	case len(constrained) == 1 && (capGran[constrained[0]]+1)*len(items) <= mckpMaxStates:
		solveTiered1D(items, bestFree, constrained[0], capGran[constrained[0]], granules, plan)
		return plan
	case len(constrained) == 2 &&
		(capGran[constrained[0]]+1)*(capGran[constrained[1]]+1) <= mckpMaxStates &&
		(capGran[constrained[0]]+1)*(capGran[constrained[1]]+1)*len(items) <= mckpMaxCells:
		solveTiered2D(items, bestFree, constrained[0], constrained[1],
			capGran[constrained[0]], capGran[constrained[1]], granules, plan)
		return plan
	default:
		solveTieredGreedy(items, bestFree, constrained, capacities, plan)
		return plan
	}
}

// solveTiered1D is the exact DP for one constrained tier: each item either
// takes its best unconstrained tier (no capacity cost) or the constrained
// tier (costing its granule size).
func solveTiered1D(items []TieredItem, bestFree []int, ct, cap int,
	granules func(int64) int, plan *TieredPlan) {
	dp := make([]float64, cap+1)
	take := make([][]bool, len(items))
	var base float64
	for i, it := range items {
		base += it.WeightNS[bestFree[i]]
		gain := it.WeightNS[ct] - it.WeightNS[bestFree[i]]
		sz := granules(it.Size)
		take[i] = make([]bool, cap+1)
		if sz > cap || it.Size <= 0 {
			continue
		}
		for c := cap; c >= sz; c-- {
			if v := dp[c-sz] + gain; v > dp[c] {
				dp[c] = v
				take[i][c] = true
			}
		}
	}
	c := cap
	assign := make([]int, len(items))
	for i := len(items) - 1; i >= 0; i-- {
		if take[i][c] {
			assign[i] = ct
			c -= granules(items[i].Size)
		} else {
			assign[i] = bestFree[i]
		}
	}
	for i, it := range items {
		plan.Assign[it.Chunk] = assign[i]
	}
	plan.TotalWeightNS = base + dp[cap]
	plan.Solver = "dp"
	plan.Work = (cap + 1) * len(items)
}

// solveTiered2D is the exact DP for two constrained tiers: per item the
// choices are best-unconstrained (free), tier a (costs size on axis a) or
// tier b (costs size on axis b).
func solveTiered2D(items []TieredItem, bestFree []int, ta, tb, capA, capB int,
	granules func(int64) int, plan *TieredPlan) {
	w := capB + 1
	idx := func(a, b int) int { return a*w + b }
	dp := make([]float64, (capA+1)*w)
	// choice[i] records per state: 0 = free tier, 1 = tier a, 2 = tier b.
	choice := make([][]uint8, len(items))
	var base float64
	for i, it := range items {
		base += it.WeightNS[bestFree[i]]
		gainA := it.WeightNS[ta] - it.WeightNS[bestFree[i]]
		gainB := it.WeightNS[tb] - it.WeightNS[bestFree[i]]
		sz := granules(it.Size)
		choice[i] = make([]uint8, (capA+1)*w)
		if it.Size <= 0 {
			continue
		}
		for a := capA; a >= 0; a-- {
			for b := capB; b >= 0; b-- {
				best := dp[idx(a, b)]
				var pick uint8
				if a >= sz {
					if v := dp[idx(a-sz, b)] + gainA; v > best {
						best, pick = v, 1
					}
				}
				if b >= sz {
					if v := dp[idx(a, b-sz)] + gainB; v > best {
						best, pick = v, 2
					}
				}
				if pick != 0 {
					dp[idx(a, b)] = best
					choice[i][idx(a, b)] = pick
				}
			}
		}
	}
	a, b := capA, capB
	assign := make([]int, len(items))
	for i := len(items) - 1; i >= 0; i-- {
		switch choice[i][idx(a, b)] {
		case 1:
			assign[i] = ta
			a -= granules(items[i].Size)
		case 2:
			assign[i] = tb
			b -= granules(items[i].Size)
		default:
			assign[i] = bestFree[i]
		}
	}
	for i, it := range items {
		plan.Assign[it.Chunk] = assign[i]
	}
	plan.TotalWeightNS = base + dp[idx(capA, capB)]
	plan.Solver = "dp"
	plan.Work = (capA + 1) * w * len(items)
}

// solveTieredGreedy is the large-instance fallback: candidates (item,
// constrained tier) ranked by gain density over the item's best
// unconstrained tier, assigned first-fit while tier budgets last. It never
// exceeds a capacity and is deterministic (density desc, then chunk name,
// then tier index).
func solveTieredGreedy(items []TieredItem, bestFree []int, constrained []int,
	capacities []int64, plan *TieredPlan) {
	type cand struct {
		item, tier int
		gain       float64
	}
	var cands []cand
	for i, it := range items {
		if it.Size <= 0 {
			continue
		}
		for _, t := range constrained {
			if gain := it.WeightNS[t] - it.WeightNS[bestFree[i]]; gain > 0 {
				cands = append(cands, cand{item: i, tier: t, gain: gain})
			}
		}
	}
	sort.SliceStable(cands, func(x, y int) bool {
		dx := cands[x].gain / float64(items[cands[x].item].Size)
		dy := cands[y].gain / float64(items[cands[y].item].Size)
		if dx != dy {
			return dx > dy
		}
		if items[cands[x].item].Chunk != items[cands[y].item].Chunk {
			return items[cands[x].item].Chunk < items[cands[y].item].Chunk
		}
		return cands[x].tier < cands[y].tier
	})
	remaining := append([]int64(nil), capacities...)
	assign := make([]int, len(items))
	done := make([]bool, len(items))
	for _, c := range cands {
		if done[c.item] || items[c.item].Size > remaining[c.tier] {
			continue
		}
		assign[c.item] = c.tier
		done[c.item] = true
		remaining[c.tier] -= items[c.item].Size
	}
	for i, it := range items {
		if !done[i] {
			assign[i] = bestFree[i]
		}
		plan.Assign[it.Chunk] = assign[i]
		plan.TotalWeightNS += it.WeightNS[assign[i]]
	}
	plan.Solver = "greedy"
	plan.Work = len(cands) + len(items)
}
