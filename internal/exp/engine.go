package exp

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"unimem/internal/app"
	"unimem/internal/core"
	"unimem/internal/counters"
	"unimem/internal/machine"
	"unimem/internal/model"
	"unimem/internal/workloads"
)

// Engine is the one execution path behind both public consumers: the
// library's Session and the experiment Suite. It owns the pieces every
// run shares —
//
//   - a memoized per-machine Calibration (the paper computes CF_bw /
//     CF_lat / BW_peak once per platform, not once per run),
//   - the RunCache memoizing deterministic baseline executions by
//     (workload+spec digest, machine fingerprint, strategy, options), and
//   - Quick-mode iteration capping.
//
// All methods are safe for concurrent use.
type Engine struct {
	mu    sync.Mutex
	quick bool
	cache *RunCache

	// calibMu guards only the calibration table, so an in-flight platform
	// measurement never stalls Execute's configuration snapshot; the
	// per-entry Once gives singleflight semantics per calibKey.
	calibMu sync.Mutex
	calib   map[calibKey]*calibEntry

	// poolQueued/poolRunning gauge the ForEach worker pool for the
	// observability layer: jobs accepted but not yet dispatched, and jobs
	// currently executing.
	poolQueued  atomic.Int64
	poolRunning atomic.Int64
}

// calibKey identifies one platform measurement: the machine's performance
// fingerprint plus the sampling configuration and seed that drove it.
type calibKey struct {
	machine  string
	counters string
	seed     uint64
}

type calibEntry struct {
	once sync.Once
	c    model.Calibration
}

// NewEngine returns an engine with the given Quick mode and cache (nil
// disables run memoization; calibration is always memoized).
func NewEngine(quick bool, cache *RunCache) *Engine {
	return &Engine{quick: quick, cache: cache, calib: map[calibKey]*calibEntry{}}
}

// SetQuick toggles Quick-mode iteration capping.
func (e *Engine) SetQuick(q bool) {
	e.mu.Lock()
	e.quick = q
	e.mu.Unlock()
}

// SetCache replaces the run cache (nil disables memoization).
func (e *Engine) SetCache(c *RunCache) {
	e.mu.Lock()
	e.cache = c
	e.mu.Unlock()
}

// snapshot reads the engine's mutable configuration atomically.
func (e *Engine) snapshot() (quick bool, cache *RunCache) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.quick, e.cache
}

// Stats snapshots the run cache's hit/miss counters.
func (e *Engine) Stats() CacheStats {
	_, cache := e.snapshot()
	return cache.Stats()
}

// prepQuick applies Quick-mode iteration capping. It is a free function —
// not engine state — because the cluster route key must reproduce the
// exact workload the cache will key on (see RouteKey).
func prepQuick(w *workloads.Workload, quick bool) *workloads.Workload {
	if quick && w.Iterations > 12 {
		cp := *w
		cp.Iterations = 12
		return &cp
	}
	return w
}

// Calibration returns the memoized one-time platform measurement for m
// under the given sampling configuration and seed, computing it on first
// use (concurrent first users block on one measurement, not duplicate
// it). Machines are identified by performance fingerprint, so derived
// twins that are physically identical share one measurement.
func (e *Engine) Calibration(m *machine.Machine, cc counters.Config, seed uint64) model.Calibration {
	key := calibKey{machine: machineFingerprint(m), counters: fmt.Sprintf("%+v", cc), seed: seed}
	e.calibMu.Lock()
	entry, ok := e.calib[key]
	if !ok {
		entry = &calibEntry{}
		e.calib[key] = entry
	}
	e.calibMu.Unlock()
	entry.once.Do(func() { entry.c = model.Calibrate(m, cc, seed) })
	return entry.c
}

// ForEach fans fn across at most workers goroutines with deterministic
// slot semantics and context cancellation (see forEachRow); exported for
// the Session's batch APIs so one scheduler serves both consumers.
func (e *Engine) ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	e.poolQueued.Add(int64(n))
	var dispatched atomic.Int64
	err := forEachRow(ctx, workers, n, func(i int) error {
		dispatched.Add(1)
		e.poolQueued.Add(-1)
		e.poolRunning.Add(1)
		defer e.poolRunning.Add(-1)
		return fn(i)
	})
	// Jobs a cancelled fan-out never dispatched are no longer queued.
	e.poolQueued.Add(dispatched.Load() - int64(n))
	return err
}

// PoolStats reports the worker pool's current depth: jobs queued (accepted
// by ForEach but not yet dispatched) and jobs running.
func (e *Engine) PoolStats() (queued, running int64) {
	return e.poolQueued.Load(), e.poolRunning.Load()
}

// Execute runs workload w on machine m under the strategy, bounded by ctx.
//
// Static and X-Mem strategies memoize in the engine's cache (results are
// shared by pointer and must be treated as immutable); the Unimem runtime
// executes fresh every time and additionally returns the per-rank
// runtimes in rank order for introspection. When the Unimem config
// carries no Calibration, the engine installs the memoized platform
// measurement derived exactly like the runtime's own lazy path
// (seed cfg.Seed^0xCA11B), so results are bit-identical to a per-rank
// lazy calibration at a fraction of the cost.
func (e *Engine) Execute(ctx context.Context, w *workloads.Workload, m *machine.Machine, st Strategy, cfg core.Config, opts app.Options) (*app.Result, []*core.Runtime, error) {
	res, rts, _, err := e.ExecuteInfo(ctx, w, m, st, cfg, opts)
	return res, rts, err
}

// ExecInfo reports execution metadata alongside a run's result.
type ExecInfo struct {
	// CacheHit is true when the result was served from a memoized (or
	// in-flight) cache entry rather than a fresh execution. Always false
	// for the Unimem strategy, which never caches.
	CacheHit bool
	// FastPath reports the analytic fast path's memo and fast-forward
	// counters for this execution. All zeros when the run was served from
	// the cache (nothing executed), the strategy's manager cannot
	// fast-forward, or the run opted out via Options.ExactSim.
	FastPath app.FastPathStats
}

// ExecuteInfo is Execute returning ExecInfo. When opts.Trace is set, the
// engine records wall-clock spans for its stages (calibration, cache
// lookup, the execution itself) alongside the virtual-clock spans the
// harness and runtime record during the run.
func (e *Engine) ExecuteInfo(ctx context.Context, w *workloads.Workload, m *machine.Machine, st Strategy, cfg core.Config, opts app.Options) (*app.Result, []*core.Runtime, ExecInfo, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var info ExecInfo
	if !st.valid() {
		return nil, nil, info, fmt.Errorf("exp: zero Strategy value (use one of the Strategy constructors)")
	}
	quick, cache := e.snapshot()
	w = prepQuick(w, quick)
	m = st.targetMachine(m)
	tr := opts.Trace
	// Collect fast-path counters into the caller-visible info unless the
	// caller brought its own sink. Cache-inert: keyFor never reads it.
	if opts.FastPath == nil {
		opts.FastPath = &info.FastPath
	}

	if st.IsUnimem() {
		if cfg.Calibration == (model.Calibration{}) {
			calStart := time.Now()
			cfg.Calibration = e.Calibration(m, cfg.Counters, cfg.Seed^0xCA11B)
			if tr != nil {
				tr.WallSpan(0, "calibration", "engine", calStart, nil)
			}
		}
		col := NewCollector()
		execStart := time.Now()
		res, err := app.RunCtx(ctx, w, m, opts, col.Factory(cfg))
		if tr != nil {
			tr.WallSpan(0, "execute "+w.Name, "engine", execStart,
				map[string]any{"strategy": st.cacheKey(), "cached": false})
		}
		if res != nil {
			// Finalize the attribution document (a nil Explain no-ops):
			// stamp the run's identity and realized time, and derive the
			// regret figure from the decisions' oracle baselines.
			opts.Explain.Finish(w.Name, m.Name, st.cacheKey(), res.TimeNS, w.Iterations)
		}
		// Runtimes are returned even on error: the already-created per-rank
		// instances are the debugging handle a failed run leaves behind
		// (and what the legacy wrappers always exposed).
		return res, col.byRank(), info, err
	}

	execStart := time.Now()
	res, hit, err := cache.DoInfo(ctx, keyFor(w, m, st.cacheKey(), opts), func() (*app.Result, error) {
		mf, err := st.factory(ctx, w, m, opts)
		if err != nil {
			return nil, err
		}
		return app.RunCtx(ctx, w, m, opts, mf)
	})
	info.CacheHit = hit
	if tr != nil {
		tr.WallSpan(0, "execute "+w.Name, "engine", execStart,
			map[string]any{"strategy": st.cacheKey(), "cached": hit})
	}
	if res != nil {
		// Baseline strategies take no placement decisions, so the document
		// carries identity and realized time only (no regret); memoized
		// hits never re-executed, so there is nothing else to attribute.
		opts.Explain.Finish(w.Name, m.Name, st.cacheKey(), res.TimeNS, w.Iterations)
	}
	return res, nil, info, err
}
