package model

import (
	"testing"

	"unimem/internal/machine"
)

// TestAnalyticPhaseReplaysMachineTerms: the closed-form phase cost must
// equal the machine's timing terms summed the way the harness sums them,
// with each clock charge truncated separately.
func TestAnalyticPhaseReplaysMachineTerms(t *testing.T) {
	m := machine.PlatformA().WithNVMLatencyFactor(4)
	chunks := []ChunkAccess{
		{Tier: machine.DRAM, Accesses: 1e6, Pattern: machine.Stream, ReadFrac: 0.7},
		{Tier: machine.NVM, Accesses: 3e5, Pattern: machine.PointerChase, ReadFrac: 1},
		{Tier: machine.NVM, Accesses: 0, Pattern: machine.Stream, ReadFrac: 0.5}, // skipped
	}
	const flops = 10e6
	out := AnalyticPhase(m, chunks, flops)

	wantMem := m.MemTimeNS(machine.DRAM, 1e6, machine.Stream, 0.7) +
		m.MemTimeNS(machine.NVM, 3e5, machine.PointerChase, 1)
	if out.MemNS != wantMem {
		t.Errorf("MemNS = %v, want %v", out.MemNS, wantMem)
	}
	if want := m.ComputeTimeNS(flops); out.ComputeNS != want {
		t.Errorf("ComputeNS = %v, want %v", out.ComputeNS, want)
	}
	if want := int64(wantMem) + int64(m.ComputeTimeNS(flops)); out.ClockNS != want {
		t.Errorf("ClockNS = %d, want %d (terms truncated separately)", out.ClockNS, want)
	}
	if out.MemNS <= 0 || out.ComputeNS <= 0 {
		t.Fatalf("degenerate outcome %+v", out)
	}
}

// TestAnalyticPhaseTierSensitivity: the same traffic priced on NVM must
// cost more than on DRAM — the signal every placement decision rests on.
func TestAnalyticPhaseTierSensitivity(t *testing.T) {
	m := machine.PlatformA().WithNVMLatencyFactor(4).WithNVMBandwidthFraction(0.5)
	on := func(tier machine.TierKind) float64 {
		return AnalyticPhase(m, []ChunkAccess{
			{Tier: tier, Accesses: 1e6, Pattern: machine.PointerChase, ReadFrac: 1},
		}, 0).MemNS
	}
	if on(machine.NVM) <= on(machine.DRAM) {
		t.Fatalf("NVM %v not slower than DRAM %v", on(machine.NVM), on(machine.DRAM))
	}
}

// TestSplitAccesses: single-chunk objects take the full count; split
// objects share proportionally by bytes.
func TestSplitAccesses(t *testing.T) {
	if got := SplitAccesses(1000, 64, 256, 1); got != 1000 {
		t.Errorf("unsplit object: %d, want 1000", got)
	}
	if got := SplitAccesses(1000, 64, 256, 4); got != 250 {
		t.Errorf("quarter chunk: %d, want 250", got)
	}
	if got := SplitAccesses(1000, 128, 256, 2); got != 500 {
		t.Errorf("half chunk: %d, want 500", got)
	}
}
