// Package exp is the benchmark harness: one runner per table and figure of
// the paper's evaluation (§2.2 and §5), each regenerating the same rows or
// series the paper reports, normalized the same way (execution time
// relative to DRAM-only). The cmd/unimem-bench CLI and the repository's
// testing.B benchmarks both drive this package.
package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated paper artifact.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carry paper-vs-measured commentary rendered under the table.
	Notes []string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned ASCII rendition.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV emits the table as CSV (columns first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{}, t.Columns...)); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
