// Package model implements Unimem's lightweight performance models
// (§3.1.2): Eq. 1's per-object consumed-bandwidth estimate, the
// bandwidth/latency sensitivity classification with the t1/t2 thresholds,
// Eq. 2/3's data-movement benefit, Eq. 4's movement cost with
// computation overlap, and the offline calibration of the CF_bw / CF_lat
// constant factors against STREAM and pointer-chasing microbenchmarks.
package model

import (
	"fmt"

	"unimem/internal/counters"
	"unimem/internal/machine"
)

// Sensitivity classifies what a data object's performance is bound by.
type Sensitivity int

const (
	// BandwidthBound objects consume >= t1% of peak NVM bandwidth.
	BandwidthBound Sensitivity = iota
	// LatencyBound objects consume < t2% of peak NVM bandwidth.
	LatencyBound
	// Mixed objects fall between the thresholds; their benefit is
	// max(bandwidth benefit, latency benefit).
	Mixed
)

// String returns a short label.
func (s Sensitivity) String() string {
	switch s {
	case BandwidthBound:
		return "bandwidth"
	case LatencyBound:
		return "latency"
	default:
		return "mixed"
	}
}

// Config holds the model parameters. T1/T2 are the paper's thresholds
// (percent of peak NVM bandwidth); CFBw/CFLat and BWPeakBps come from
// Calibrate and need computing only once per platform.
type Config struct {
	T1, T2    float64
	CFBw      float64
	CFLat     float64
	BWPeakBps float64
	// LiteralEq3 disables the MLP correction (ObservedMLP) and prices
	// Eq. 3 exactly as written in the paper — every access at full
	// serialization. Kept as an ablation knob: without the correction the
	// knapsack overvalues mid-concurrency objects by their MLP factor
	// (see the ablation experiment).
	LiteralEq3 bool
}

// DefaultThresholds returns a Config with the paper's t1=80, t2=10 and
// unit constant factors (calibration fills in the rest).
func DefaultThresholds() Config {
	return Config{T1: 80, T2: 10, CFBw: 1, CFLat: 1}
}

// ConsumedBWBps implements Eq. 1: the bandwidth consumed by accesses to a
// data object, computed from sampled counters — accessed data size over the
// fraction of phase execution time that has accesses to the object in
// flight.
func ConsumedBWBps(s counters.ObjSample, ps *counters.PhaseSample) float64 {
	if ps.TotalSamples == 0 || ps.DurNS <= 0 || s.BusySamples <= 0 {
		return 0
	}
	bytes := float64(s.SampledAccesses) * machine.CacheLineBytes
	activeNS := float64(s.BusySamples) / float64(ps.TotalSamples) * ps.DurNS
	if activeNS <= 0 {
		return 0
	}
	return bytes / (activeNS / 1e9)
}

// Classify applies the t1/t2 thresholds against the calibrated peak NVM
// bandwidth.
func (c *Config) Classify(bwBps float64) Sensitivity {
	if c.BWPeakBps <= 0 {
		return Mixed
	}
	pct := bwBps / c.BWPeakBps * 100
	switch {
	case pct >= c.T1:
		return BandwidthBound
	case pct < c.T2:
		return LatencyBound
	default:
		return Mixed
	}
}

// BenefitBWNS implements Eq. 2: the per-phase-execution benefit, in ns, of
// moving a bandwidth-bound object from the slowest tier to the fastest
// (NVM to DRAM on the paper's two-tier platforms).
func (c *Config) BenefitBWNS(m *machine.Machine, sampledAccesses int64) float64 {
	return c.BenefitBWBetweenNS(m, m.SlowestIdx(), 0, sampledAccesses)
}

// BenefitBWBetweenNS evaluates Eq. 2 against an arbitrary tier pair: the
// benefit of moving a bandwidth-bound object from tier `from` to tier `to`
// (negative when `to` has less bandwidth).
func (c *Config) BenefitBWBetweenNS(m *machine.Machine, from, to machine.TierKind, sampledAccesses int64) float64 {
	bytes := float64(sampledAccesses) * machine.CacheLineBytes
	return (bytes/m.Tier(from).BandwidthBps - bytes/m.Tier(to).BandwidthBps) * c.CFBw * 1e9
}

// BenefitLatNS implements Eq. 3: the per-phase-execution benefit, in ns,
// of moving a latency-bound object from the slowest tier to the fastest.
// mlp is the observed access concurrency (1 reduces to the paper's formula
// exactly, matching the pointer-chasing benchmark CF_lat is calibrated on;
// see ObservedMLP).
func (c *Config) BenefitLatNS(m *machine.Machine, sampledAccesses int64, readFrac, mlp float64) float64 {
	return c.BenefitLatBetweenNS(m, m.SlowestIdx(), 0, sampledAccesses, readFrac, mlp)
}

// BenefitLatBetweenNS evaluates Eq. 3 against an arbitrary tier pair.
func (c *Config) BenefitLatBetweenNS(m *machine.Machine, from, to machine.TierKind, sampledAccesses int64, readFrac, mlp float64) float64 {
	if mlp < 1 {
		mlp = 1
	}
	dLat := m.Tier(from).Latency(readFrac) - m.Tier(to).Latency(readFrac)
	return float64(sampledAccesses) * dLat / mlp * c.CFLat
}

// ObservedMLP estimates a sampled object's effective memory-level
// parallelism from counter data alone: the per-access service time
// (active time over sampled accesses) decomposes into a bandwidth share
// and a latency share, and the latency share of a chain of depth
// accesses/MLP is lat/MLP. Dependent chains report ~1; prefetched streams
// report large values. tier is where the object resided while profiled.
//
// Without this correction Eq. 3 prices every latency nanosecond at full
// serialization, overestimating the benefit for moderately concurrent
// (Mixed) objects by the MLP factor and misordering the knapsack.
func ObservedMLP(m *machine.Machine, s counters.ObjSample, ps *counters.PhaseSample, tier machine.TierKind) float64 {
	if s.SampledAccesses <= 0 || ps.TotalSamples <= 0 {
		return 1
	}
	t := m.Tier(tier)
	activeNS := float64(s.BusySamples) / float64(ps.TotalSamples) * ps.DurNS
	svcPerAcc := activeNS / float64(s.SampledAccesses)
	bwPerAcc := machine.CacheLineBytes / t.BandwidthBps * 1e9
	latShare := svcPerAcc - bwPerAcc
	if latShare <= 0 {
		return 512
	}
	mlp := t.Latency(s.ReadFrac) / latShare
	if mlp < 1 {
		return 1
	}
	if mlp > 512 {
		return 512
	}
	return mlp
}

// Estimate is the model's summary for one chunk in one phase.
type Estimate struct {
	Chunk      string
	Object     string
	ChunkIndex int
	Sens       Sensitivity
	BWBps      float64
	// BenefitNS is the predicted gain per phase execution from having the
	// chunk in DRAM instead of NVM (Eq. 2/3, or their max for Mixed).
	BenefitNS float64
}

// EstimateChunk evaluates Eq. 1-3 for one sampled chunk against the
// hierarchy's extreme pair (slowest tier -> fastest tier, i.e. NVM -> DRAM
// on two-tier platforms). tier is the chunk's residence while it was
// profiled (needed to decompose its observed service time into bandwidth
// and latency shares).
func (c *Config) EstimateChunk(m *machine.Machine, s counters.ObjSample, ps *counters.PhaseSample, tier machine.TierKind) Estimate {
	return c.EstimateChunkAt(m, s, ps, tier, m.SlowestIdx(), 0)
}

// EstimateChunkAt evaluates Eq. 1-3 for one sampled chunk against an
// arbitrary tier pair: the predicted per-phase gain of residing in tier
// `to` instead of tier `from`. The multi-tier placement calls it once per
// candidate tier with `from` fixed to the slowest tier, producing the
// per-tier weight vector of the multiple-choice knapsack. Negative gains
// (a "faster" tier that is worse for this access mix, e.g. HBM for a
// dependent chain) clamp to zero, matching Eq. 5's treatment of
// non-beneficial moves.
func (c *Config) EstimateChunkAt(m *machine.Machine, s counters.ObjSample, ps *counters.PhaseSample, profTier, from, to machine.TierKind) Estimate {
	bw := ConsumedBWBps(s, ps)
	sens := c.Classify(bw)
	mlp := 1.0
	if !c.LiteralEq3 {
		mlp = ObservedMLP(m, s, ps, profTier)
	}
	var benefit float64
	switch sens {
	case BandwidthBound:
		benefit = c.BenefitBWBetweenNS(m, from, to, s.SampledAccesses)
	case LatencyBound:
		benefit = c.BenefitLatBetweenNS(m, from, to, s.SampledAccesses, s.ReadFrac, mlp)
	default:
		b1 := c.BenefitBWBetweenNS(m, from, to, s.SampledAccesses)
		b2 := c.BenefitLatBetweenNS(m, from, to, s.SampledAccesses, s.ReadFrac, mlp)
		if b1 > b2 {
			benefit = b1
		} else {
			benefit = b2
		}
	}
	if benefit < 0 {
		benefit = 0
	}
	return Estimate{
		Chunk:      s.Chunk,
		Object:     s.Object,
		ChunkIndex: s.ChunkIndex,
		Sens:       sens,
		BWBps:      bw,
		BenefitNS:  benefit,
	}
}

// MoveCostNS implements Eq. 4: the exposed cost of migrating sizeBytes
// between tiers when overlapNS of application execution is available to
// hide it.
func MoveCostNS(m *machine.Machine, sizeBytes int64, overlapNS float64) float64 {
	cost := m.CopyTimeNS(sizeBytes) - overlapNS
	if cost < 0 {
		return 0
	}
	return cost
}

// Calibration is the result of the offline calibration run.
type Calibration struct {
	CFBw      float64
	CFLat     float64
	BWPeakBps float64
	// Diagnostics for reporting.
	StreamMeasuredNS  float64
	StreamPredictedNS float64
	ChaseMeasuredNS   float64
	ChasePredictedNS  float64
}

// Calibrate performs the paper's one-time platform calibration:
//
//   - Runs the STREAM benchmark (bandwidth-bound, maximum concurrency) on
//     DRAM, predicts its time as sampledBytes/DRAM_bw, and sets CF_bw to
//     measured/predicted — absorbing the counters' systematic undercount.
//   - Runs the pointer-chasing benchmark (single dependent chain) on DRAM,
//     predicts sampledAccesses x DRAM_lat, and sets CF_lat likewise.
//   - Runs STREAM on NVM and evaluates Eq. 1 on its sampled profile to
//     obtain the achievable peak NVM bandwidth BW_peak.
//
// The microbenchmarks are simulated through the same machine timing model
// and counter emulation the workloads use, so the factors absorb exactly
// the artifacts they would on real hardware.
func Calibrate(m *machine.Machine, cfg counters.Config, seed uint64) Calibration {
	const (
		streamBytes = 256 << 20
		chaseAcc    = 1 << 20
	)
	smp := counters.NewSampler(m, cfg, seed)
	smp.Enable()

	// STREAM on DRAM -> CF_bw.
	accesses := int64(streamBytes / machine.CacheLineBytes)
	measured := m.MemTimeNS(0, accesses, machine.Stream, 0.67)
	ps := smp.Sample(measured, []counters.ChunkTraffic{{
		Chunk: "stream", Object: "stream", Accesses: accesses,
		ServiceNS: measured, ReadFrac: 0.67, Pattern: machine.Stream,
	}})
	sampled := ps.Objects[0].SampledAccesses
	predicted := float64(sampled*machine.CacheLineBytes) / m.Fastest().BandwidthBps * 1e9
	cal := Calibration{StreamMeasuredNS: measured, StreamPredictedNS: predicted}
	cal.CFBw = measured / predicted

	// Pointer chase on DRAM -> CF_lat.
	chaseMeasured := m.MemTimeNS(0, chaseAcc, machine.PointerChase, 1.0)
	ps = smp.Sample(chaseMeasured, []counters.ChunkTraffic{{
		Chunk: "chase", Object: "chase", Accesses: chaseAcc,
		ServiceNS: chaseMeasured, ReadFrac: 1.0, Pattern: machine.PointerChase,
	}})
	sampled = ps.Objects[0].SampledAccesses
	chasePred := float64(sampled) * m.Fastest().Latency(1.0)
	cal.ChaseMeasuredNS = chaseMeasured
	cal.ChasePredictedNS = chasePred
	cal.CFLat = chaseMeasured / chasePred

	// STREAM on NVM -> BW_peak via Eq. 1.
	nvmMeasured := m.MemTimeNS(m.SlowestIdx(), accesses, machine.Stream, 0.67)
	ps = smp.Sample(nvmMeasured, []counters.ChunkTraffic{{
		Chunk: "stream", Object: "stream", Accesses: accesses,
		ServiceNS: nvmMeasured, ReadFrac: 0.67, Pattern: machine.Stream,
	}})
	cal.BWPeakBps = ConsumedBWBps(ps.Objects[0], ps)
	return cal
}

// Apply installs the calibration into a model config.
func (c *Config) Apply(cal Calibration) {
	c.CFBw = cal.CFBw
	c.CFLat = cal.CFLat
	c.BWPeakBps = cal.BWPeakBps
}

// String summarizes a calibration for logs and the calib experiment.
func (cal Calibration) String() string {
	return fmt.Sprintf("CF_bw=%.3f CF_lat=%.3f BW_peak=%.2fGB/s",
		cal.CFBw, cal.CFLat, cal.BWPeakBps/1e9)
}
