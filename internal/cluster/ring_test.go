package cluster

import (
	"fmt"
	"testing"
)

// ringKeys generates a deterministic key population shaped like real route
// keys (pipe-separated fields with small varying integers).
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("cg|C|spec%04d|fp%02d|xmem|%d|1|%d|0|0",
			i, i%17, 2+i%7, i%13)
	}
	return keys
}

func peerNames(n int) []string {
	ps := make([]string, n)
	for i := range ps {
		ps[i] = fmt.Sprintf("http://node-%d:9090", i)
	}
	return ps
}

// TestRingBalance: with 128 vnodes, key load across 2–8 peers stays within
// a modest factor of perfectly even.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(10000)
	for n := 2; n <= 8; n++ {
		r := NewRing(peerNames(n), 0)
		counts := map[string]int{}
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("%d peers: only %d received keys", n, len(counts))
		}
		mean := float64(len(keys)) / float64(n)
		for p, c := range counts {
			if ratio := float64(c) / mean; ratio > 1.35 || ratio < 0.65 {
				t.Errorf("%d peers: %s owns %d keys (%.2fx the mean)", n, p, c, ratio)
			}
		}
	}
}

// TestRingDeterministic: every spelling of the same membership — order,
// duplicates, trailing slashes, whitespace — yields identical ownership,
// the property that lets independently configured nodes agree.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	b := NewRing([]string{" http://c:1/", "http://a:1", "http://b:1", "http://a:1/"}, 0)
	for _, k := range ringKeys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings over the same peers disagree on %q: %q vs %q",
				k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingMinimalRemappingOnAdd: growing n peers to n+1 moves roughly 1/(n+1)
// of the keys, and every moved key lands on the new peer — existing peers
// never trade keys among themselves.
func TestRingMinimalRemappingOnAdd(t *testing.T) {
	keys := ringKeys(10000)
	for n := 2; n <= 7; n++ {
		old := NewRing(peerNames(n), 0)
		grown := NewRing(peerNames(n+1), 0)
		added := NormalizePeer(peerNames(n + 1)[n])
		moved := 0
		for _, k := range keys {
			was, is := old.Owner(k), grown.Owner(k)
			if was == is {
				continue
			}
			moved++
			if is != added {
				t.Fatalf("%d->%d peers: key %q moved %q -> %q, not to the new peer %q",
					n, n+1, k, was, is, added)
			}
		}
		ideal := float64(len(keys)) / float64(n+1)
		if frac := float64(moved) / ideal; frac > 2 || frac < 0.5 {
			t.Errorf("%d->%d peers: %d keys moved, %.2fx the ideal %d",
				n, n+1, moved, frac, int(ideal))
		}
	}
}

// TestRingMinimalRemappingOnRemove: removing a peer reassigns exactly that
// peer's keys; every other key keeps its owner.
func TestRingMinimalRemappingOnRemove(t *testing.T) {
	keys := ringKeys(10000)
	peers := peerNames(5)
	full := NewRing(peers, 0)
	removed := NormalizePeer(peers[2])
	shrunk := NewRing(append(append([]string(nil), peers[:2]...), peers[3:]...), 0)
	for _, k := range keys {
		was, is := full.Owner(k), shrunk.Owner(k)
		if was == removed {
			if is == removed {
				t.Fatalf("key %q still owned by removed peer", k)
			}
			continue
		}
		if was != is {
			t.Fatalf("key %q moved %q -> %q though its owner survived", k, was, is)
		}
	}
}

// TestRingEdgeCases: empty and single-peer rings.
func TestRingEdgeCases(t *testing.T) {
	var nilRing *Ring
	if got := nilRing.Owner("k"); got != "" {
		t.Fatalf("nil ring owner = %q", got)
	}
	empty := NewRing(nil, 0)
	if got := empty.Owner("k"); got != "" || empty.Len() != 0 {
		t.Fatalf("empty ring: owner %q len %d", got, empty.Len())
	}
	solo := NewRing([]string{"http://only:1/"}, 0)
	for _, k := range ringKeys(50) {
		if got := solo.Owner(k); got != "http://only:1" {
			t.Fatalf("single-peer ring routed %q to %q", k, got)
		}
	}
}
