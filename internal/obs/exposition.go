package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ValidateExposition parses a Prometheus text-format (0.0.4) document and
// returns an error on the first malformed line. It checks structural
// validity — comment grammar, metric/label name grammar, label-value
// quoting and escapes, and that every sample value parses as a float —
// plus the cross-line invariants that matter for scrape correctness:
// TYPE declared at most once per metric and samples appearing under the
// most recent TYPE block if one exists. Tests and the CI smoke use it to
// assert every /metrics scrape stays machine-readable.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	typed := map[string]string{} // metric name -> type
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, typed); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := validateSample(line, typed); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	return sc.Err()
}

func validateComment(line string, typed map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment; legal
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !metricNameRe.MatchString(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) != 4 || !metricNameRe.MatchString(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if _, dup := typed[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for metric %q", fields[2])
		}
		typed[fields[2]] = fields[3]
	}
	return nil
}

// sampleBase strips histogram/summary suffixes so a _bucket sample is
// matched to its family's TYPE entry.
func sampleBase(name string, typed map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := typed[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return name
}

func validateSample(line string, typed map[string]string) error {
	// Metric name runs to the first '{' or space.
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return fmt.Errorf("malformed sample line %q", line)
	}
	name := line[:nameEnd]
	if !metricNameRe.MatchString(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[nameEnd:]
	if rest[0] == '{' {
		end, err := validateLabels(rest)
		if err != nil {
			return fmt.Errorf("metric %q: %w", name, err)
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	// Value, optionally followed by a timestamp.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("metric %q: expected value [timestamp], got %q", name, rest)
	}
	if _, err := parseValue(fields[0]); err != nil {
		return fmt.Errorf("metric %q: bad value %q", name, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("metric %q: bad timestamp %q", name, fields[1])
		}
	}
	if len(typed) > 0 {
		if _, ok := typed[sampleBase(name, typed)]; !ok {
			return fmt.Errorf("sample %q has no preceding TYPE declaration", name)
		}
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return 0, nil
	case "-Inf":
		return 0, nil
	case "NaN", "nan":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// validateLabels parses a {k="v",...} block starting at s[0]=='{' and
// returns the index just past the closing brace.
func validateLabels(s string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		// Label name.
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("label name without '='")
		}
		lname := s[start:i]
		if !labelNameRe.MatchString(lname) && lname != "le" && lname != "quantile" {
			return 0, fmt.Errorf("invalid label name %q", lname)
		}
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %q: value not quoted", lname)
		}
		i++ // past opening quote
		for i < len(s) {
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("label %q: dangling escape", lname)
				}
				switch s[i+1] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Errorf("label %q: bad escape \\%c", lname, s[i+1])
				}
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("label %q: unterminated value", lname)
		}
		i++ // past closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
