//go:build unix

package simprog

import "syscall"

// processCPUNS returns the process's consumed CPU time (user + system) in
// nanoseconds — the denominator of worlds/sec/core, which is what makes
// the single-threaded event core and the many-goroutine oracle engine
// comparable on a multicore machine.
func processCPUNS() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}
