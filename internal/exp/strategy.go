package exp

import (
	"context"
	"fmt"

	"unimem/internal/app"
	"unimem/internal/machine"
	"unimem/internal/workloads"
	"unimem/internal/xmem"
)

// Strategy is a first-class placement policy: the value a caller hands the
// engine to say *how* a workload should be placed, unifying what used to
// be six separate entry points. A Strategy bundles
//
//   - an optional machine derivation (the DRAM-only and fastest-only
//     baselines run on undegraded twins of the target machine),
//   - either a manager factory (static policies, X-Mem's offline
//     profile-then-pin composite) or the full Unimem runtime, and
//   - a cache key so deterministic baseline runs memoize in a RunCache.
//
// Strategy values are immutable and safe to share across goroutines.
type Strategy struct {
	name string
	key  string
	// mach derives the machine the run actually executes on (nil:
	// identity).
	mach func(*machine.Machine) *machine.Machine
	// factory builds the per-rank manager factory; nil for the Unimem
	// runtime, which the engine wires itself (calibration, collector).
	// It runs inside the cache's singleflight, so composite policies
	// (X-Mem's profile pass) memoize as one unit.
	factory func(ctx context.Context, w *workloads.Workload, m *machine.Machine, opts app.Options) (app.ManagerFactory, error)
	unimem  bool
}

// Name returns the policy's display name (also the manager name recorded
// in Result.Manager).
func (s Strategy) Name() string { return s.name }

// IsUnimem reports whether this is the full Unimem runtime policy.
func (s Strategy) IsUnimem() bool { return s.unimem }

// cacheKey is the strategy component of the RunKey.
func (s Strategy) cacheKey() string { return s.key }

// targetMachine applies the strategy's machine derivation.
func (s Strategy) targetMachine(m *machine.Machine) *machine.Machine {
	if s.mach == nil {
		return m
	}
	return s.mach(m)
}

// valid reports whether the strategy can execute.
func (s Strategy) valid() bool { return s.unimem || s.factory != nil }

// staticStrategy wraps app.NewStaticFactory under the given name; objects
// selected by inFastest go to the fastest tier, everything else to the
// slowest (inFastest nil pins everything in the slowest tier).
func staticStrategy(name string, inFastest func(string) bool) Strategy {
	return Strategy{
		name: name,
		key:  "static:" + name,
		factory: func(ctx context.Context, w *workloads.Workload, m *machine.Machine, opts app.Options) (app.ManagerFactory, error) {
			return app.NewStaticFactory(name, inFastest), nil
		},
	}
}

// StrategyUnimem returns the full Unimem runtime policy: online profiling,
// Eq. 1-4 modeling, knapsack placement and helper-thread migration (the
// multiple-choice knapsack on machines deeper than two tiers).
func StrategyUnimem() Strategy {
	return Strategy{name: "unimem", key: "unimem", unimem: true}
}

// StrategySlowestOnly pins every object in the slowest tier — the paper's
// NVM-only comparison system.
func StrategySlowestOnly() Strategy { return staticStrategy("nvm-only", nil) }

// StrategyDRAMOnly runs on the undegraded twin of the target machine (NVM
// tier configured to DRAM parity) — the baseline the paper's two-tier
// results normalize against.
func StrategyDRAMOnly() Strategy {
	s := staticStrategy("dram-only", nil)
	s.mach = func(m *machine.Machine) *machine.Machine {
		return m.WithNVMLatencyFactor(1).WithNVMBandwidthFraction(1)
	}
	return s
}

// StrategyFastestOnly runs on the FastTwin of the target machine: every
// tier at the hierarchy's component-wise best performance — the
// upper-bound baseline multi-tier results normalize against (equivalent to
// StrategyDRAMOnly on two-tier machines).
func StrategyFastestOnly() Strategy {
	s := staticStrategy("fast-only", nil)
	s.mach = (*machine.Machine).FastTwin
	return s
}

// StrategyStaticFunc is the escape hatch for arbitrary static placements:
// objects selected by inFastest live in the fastest tier, the rest in the
// slowest. The name keys the run cache, so distinct policies must carry
// distinct names; user strategies live in their own cache namespace
// ("staticfunc:") and can never collide with the built-in baselines even
// when they reuse a built-in name.
func StrategyStaticFunc(name string, inFastest func(object string) bool) Strategy {
	s := staticStrategy(name, inFastest)
	s.key = "staticfunc:" + name
	return s
}

// StrategySuiteStatic is the experiment suite's internal static policy:
// like StrategyStaticFunc but keyed in the historical "static:" cache
// namespace the suite's baselines have always shared.
func StrategySuiteStatic(name string, inFastest func(object string) bool) Strategy {
	return staticStrategy(name, inFastest)
}

// StrategyHintDensity is the profile-free N-tier static baseline: objects
// ranked by static reference-hint density fill the constrained tiers
// fastest-first (see TieredStaticAssign), with no profiling run and no
// migration.
func StrategyHintDensity() Strategy {
	return Strategy{
		name: "tiered-static",
		key:  "static:tiered-hint",
		factory: func(ctx context.Context, w *workloads.Workload, m *machine.Machine, opts app.Options) (app.ManagerFactory, error) {
			return app.NewTieredStaticFactory("tiered-static", TieredStaticAssign(w, m)), nil
		},
	}
}

// StrategyXMem is the X-Mem baseline (Dulloor et al., EuroSys'16): an
// offline whole-program profiling pass followed by one static hotness
// placement for the entire run. Profile, placement and measured run
// memoize as a single cache entry.
func StrategyXMem() Strategy {
	return Strategy{
		name: "xmem",
		key:  "xmem",
		factory: func(ctx context.Context, w *workloads.Workload, m *machine.Machine, opts app.Options) (app.ManagerFactory, error) {
			prof, err := xmem.Profile(ctx, w, m, opts)
			if err != nil {
				return nil, err
			}
			return xmem.Factory(xmem.BuildPlacement(w, m, prof)), nil
		},
	}
}

// String implements fmt.Stringer for diagnostics.
func (s Strategy) String() string { return fmt.Sprintf("Strategy(%s)", s.name) }
