package app_test

import (
	"testing"

	"unimem/internal/app"
	"unimem/internal/core"
	"unimem/internal/machine"
	"unimem/internal/workloads"
)

func TestDeterministicRuns(t *testing.T) {
	w := workloads.NewCG("C", 4)
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	r1, err := app.Run(w, m, app.Options{Seed: 9}, core.Factory(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := app.Run(w, m, app.Options{Seed: 9}, core.Factory(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if r1.TimeNS != r2.TimeNS {
		t.Fatalf("same-seed runs diverged: %d vs %d", r1.TimeNS, r2.TimeNS)
	}
	if r1.TotalMigrations() != r2.TotalMigrations() {
		t.Fatalf("migration counts diverged: %d vs %d",
			r1.TotalMigrations(), r2.TotalMigrations())
	}
}

func TestRanksSynchronizedByCollectives(t *testing.T) {
	w := workloads.NewCG("C", 4)
	m := machine.PlatformA()
	res, err := app.Run(w, m, app.Options{}, app.NewStaticFactory("s", nil))
	if err != nil {
		t.Fatal(err)
	}
	// CG ends every iteration with collectives; rank clocks must be close.
	var min, max int64 = 1 << 62, 0
	for _, rr := range res.Ranks {
		if rr.TimeNS < min {
			min = rr.TimeNS
		}
		if rr.TimeNS > max {
			max = rr.TimeNS
		}
	}
	if float64(max-min)/float64(max) > 0.01 {
		t.Fatalf("rank clocks diverged: [%d, %d]", min, max)
	}
}

func TestDRAMOnlyIsLowerBound(t *testing.T) {
	// No manager may beat the DRAM-only machine: it bounds every HMS run.
	for _, name := range workloads.NPBNames {
		w := workloads.NewNPB(name, "C", 4)
		m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
		dm := m.WithNVMLatencyFactor(1).WithNVMBandwidthFraction(1)
		dram, err := app.Run(w, dm, app.Options{}, app.NewStaticFactory("d", nil))
		if err != nil {
			t.Fatal(err)
		}
		uni, err := app.Run(w, m, app.Options{}, core.Factory(core.DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		if uni.TimeNS < dram.TimeNS {
			t.Errorf("%s: Unimem (%d) beat DRAM-only (%d)?!", name, uni.TimeNS, dram.TimeNS)
		}
	}
}

func TestPerPhaseTimesRecorded(t *testing.T) {
	w := workloads.NewMG("C", 4)
	res, err := app.Run(w, machine.PlatformA(), app.Options{}, app.NewStaticFactory("s", nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PhaseNS) != len(w.Phases) {
		t.Fatalf("recorded %d phase times, want %d", len(res.PhaseNS), len(w.Phases))
	}
	for i, d := range res.PhaseNS {
		if d <= 0 {
			t.Errorf("phase %d (%s) has duration %v", i, w.Phases[i].Name, d)
		}
	}
}

func TestCommTimeAccounted(t *testing.T) {
	w := workloads.NewFT("C", 4) // big all-to-all transposes
	res, err := app.Run(w, machine.PlatformA(), app.Options{}, app.NewStaticFactory("s", nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range res.Ranks {
		if rr.CommNS <= 0 {
			t.Fatal("communication time must be accounted")
		}
		if rr.CommNS >= rr.TimeNS {
			t.Fatal("communication cannot exceed total time")
		}
	}
}

func TestSharedNodeDRAM(t *testing.T) {
	// 4 ranks on one node share the node's DRAM allowance: aggregate DRAM
	// residency across ranks must fit one capacity, so each rank places
	// less than it would alone.
	w := workloads.NewCG("C", 4)
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	shared, err := app.Run(w, m, app.Options{RanksPerNode: 4}, core.Factory(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	alone, err := app.Run(w, m, app.Options{RanksPerNode: 1}, core.Factory(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if shared.TimeNS <= alone.TimeNS {
		t.Fatalf("sharing node DRAM among 4 ranks should hurt: shared=%d alone=%d",
			shared.TimeNS, alone.TimeNS)
	}
}

func TestExpandTrafficSplitsChunks(t *testing.T) {
	w := workloads.NewFT("C", 4)
	m := machine.PlatformA().WithNVMBandwidthFraction(0.5)
	var got []string
	_, err := app.Run(w, m, app.Options{}, func(rank int) app.Manager {
		return core.NewRuntime(rank, core.DefaultConfig())
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = got
	// The partitioned FT arrays must appear as per-chunk traffic — checked
	// indirectly: a Unimem run migrates chunk-named pieces (see table4
	// test in exp); here we just assert the run completes with chunking on.
}
