// Tuning: sweeps the DRAM size of the heterogeneous memory system for the
// SP benchmark (the paper's Fig. 13 methodology) and shows how the
// knapsack's choices, migration volume and the residual gap to DRAM-only
// respond to capacity — the workflow a system designer would use to size
// the DRAM tier of an NVM-based node.
//
//	go run ./examples/tuning
package main

import (
	"context"
	"fmt"
	"log"

	"unimem"
)

func main() {
	base := unimem.PlatformA().WithNVMBandwidthFraction(0.5)
	w := unimem.NewNPB("SP", "C", 4)
	ctx := context.Background()

	sess := unimem.New(base)
	dram, err := sess.Run(ctx, w, unimem.DRAMOnly())
	must(err)
	nvm, err := sess.Run(ctx, w, unimem.SlowestOnly())
	must(err)
	fmt.Printf("SP Class C, NVM = 1/2 DRAM bandwidth\n")
	fmt.Printf("NVM-only gap: %.2fx of DRAM-only\n\n", ratio(nvm.Result.TimeNS, dram.Result.TimeNS))
	fmt.Printf("%8s %10s %12s %12s  %s\n",
		"DRAM", "vs DRAM", "migrations", "moved MiB", "rank-0 residents")

	// Each capacity point is a different machine, so it gets its own
	// session: the platform is calibrated once per point, not once per run.
	for _, mb := range []int64{96, 128, 192, 256, 384, 512} {
		out, err := unimem.New(base.WithDRAMCapacity(mb<<20)).Run(ctx, w, unimem.Unimem())
		must(err)
		res := out.Result
		fmt.Printf("%6dMB %9.2fx %12d %12d  %v\n",
			mb, ratio(res.TimeNS, dram.Result.TimeNS),
			res.Ranks[0].Migrations.Migrations,
			res.Ranks[0].Migrations.BytesMigrated>>20,
			out.Runtimes[0].DRAMResidents())
	}
	fmt.Println("\nReading the sweep: once DRAM covers SP's hot set (lhs+rhs),")
	fmt.Println("extra capacity buys little — the paper's Fig. 13 observation.")
}

func ratio(a, b int64) float64 { return float64(a) / float64(b) }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
